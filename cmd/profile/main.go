// Command profile runs one kernel under cycle-attribution tracing and
// renders where the machine's capacity went: a per-region attribution
// table on stdout, optionally a Chrome trace_event JSON file (load it in
// about://tracing or https://ui.perfetto.dev) and a bucketed utilization
// timeline.
//
// Usage:
//
//	profile -kernel fig1 -machine mta -trace out.json
//	profile -kernel fig2 -machine both -attr csv
//	profile -kernel prefix -layout ordered -timeline 20000
//	profile -kernel treecon -n 4096 -sample 500
//	profile -kernel coloring -machine both -attr table
//
// All output is bit-identical for any -workers value: events are
// emitted at region commit, after the deterministic replay merge.
//
// With -machine both, the two machines can run as separate shard
// processes whose partials cmd/shardmerge reassembles into the exact
// unsharded output:
//
//	profile -kernel fig1 -shard 0/2 -cache-dir /tmp/pgc > part0.json
//	profile -kernel fig1 -shard 1/2 -cache-dir /tmp/pgc > part1.json
//	shardmerge part0.json part1.json
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"pargraph/internal/cmdutil"
	"pargraph/internal/harness"
	"pargraph/internal/list"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("profile: ")
	var (
		kernel   = flag.String("kernel", "fig1", "kernel to profile: fig1 (list ranking), fig2 (connected components), prefix, treecon, coloring")
		machine  = flag.String("machine", "both", "machine(s) to run: mta, smp, or both")
		n        = flag.Int("n", 1<<16, "problem size (list nodes / graph vertices / tree leaves)")
		procs    = flag.Int("procs", 8, "simulated processors")
		layoutS  = flag.String("layout", "random", "list layout for fig1/prefix: ordered or random")
		seed     = flag.Uint64("seed", 0x33, "workload seed")
		sample   = flag.Float64("sample", 0, "MTA within-region sampling interval in simulated cycles (0 = off)")
		traceOut = flag.String("trace", "", "write Chrome trace_event JSON to this file")
		attr     = flag.String("attr", "table", "attribution format on stdout: table, csv, json, or none")
		timeline = flag.Float64("timeline", 0, "print a utilization timeline with this bucket width in cycles (0 = off)")
		workers  = flag.Int("workers", 1, "host goroutines replaying each simulated region (0 = auto: every core, serial for small regions); output is identical for any value")
		jobs     = flag.Int("jobs", 0, "experiment cells run concurrently (with -machine both the two machines are separate cells; 0 = NumCPU); output is identical for any value")
		shardS   = flag.String("shard", "", "run only the cells of shard i/N (e.g. 0/2) and emit a partial-result envelope on stdout for cmd/shardmerge")
		cacheDir = flag.String("cache-dir", "", "persist generated inputs in a content-addressed cache at this directory (default $"+cmdutil.CacheEnv+"; empty = off)")
		cpuProf  = flag.String("cpuprofile", "", "write a Go CPU profile of the whole run to this file")
		memProf  = flag.String("memprofile", "", "write a Go heap profile at exit to this file")
	)
	flag.Parse()

	shard, err := cmdutil.ParseShard(*shardS)
	if err != nil {
		log.Fatal(err)
	}
	harness.Shard = shard
	store, err := cmdutil.OpenCache(*cacheDir, harness.InputSchema)
	if err != nil {
		log.Fatal(err)
	}
	harness.CacheStore = store

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	harness.Interrupt = ctx

	if shard.Active() {
		if *traceOut != "" {
			log.Fatal("-trace is rendered by shardmerge from the merged partials")
		}
		// The partial carries the shard's event streams; shardmerge
		// reassembles the whole-run recorder and renders the attribution.
		harness.PartialTraces = &harness.PartialTraceLog{}
	}

	w, err := cmdutil.ResolveWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}
	harness.HostWorkers = w
	j, err := cmdutil.ResolveJobs(*jobs)
	if err != nil {
		log.Fatal(err)
	}
	harness.Jobs = j

	stopCPU, err := cmdutil.StartCPUProfile(*cpuProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := cmdutil.WriteHeapProfile(*memProf); err != nil {
			log.Fatal(err)
		}
	}()

	var layout list.Layout
	switch *layoutS {
	case "ordered":
		layout = list.Ordered
	case "random":
		layout = list.Random
	default:
		log.Fatalf("unknown layout %q (want ordered or random)", *layoutS)
	}

	params := harness.ProfileParams{
		Kernel: *kernel, Machine: *machine,
		N: *n, Procs: *procs, Layout: layout,
		Seed: *seed, SampleCycles: *sample,
	}
	res, err := harness.RunProfile(params)
	if err != nil {
		log.Fatal(err)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if shard.Active() {
		p := &harness.Partial{
			Schema:  harness.PartialSchema,
			Shard:   shard,
			Profile: &harness.ProfilePartial{Params: res.Params, Runs: res.Runs},
			Trace:   harness.PartialTraces.Take(),
		}
		if err := p.WriteJSON(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	for _, run := range res.Runs {
		fmt.Fprintf(out, "%s %s n=%d p=%d: %.0f cycles (%.6f s), %d trace events\n",
			run.Machine, params.Kernel, params.N, params.Procs, run.Cycles, run.Seconds, run.Events)
	}
	fmt.Fprintln(out)

	switch *attr {
	case "table":
		res.Recorder.WriteAttribution(out)
	case "csv":
		if err := res.Recorder.WriteAttributionCSV(out); err != nil {
			log.Fatal(err)
		}
	case "json":
		if err := res.Recorder.WriteAttributionJSON(out); err != nil {
			log.Fatal(err)
		}
	case "none":
	default:
		log.Fatalf("unknown attribution format %q (want table, csv, json, or none)", *attr)
	}

	if *timeline > 0 {
		res.Recorder.WriteTimeline(out, *timeline)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		bw := bufio.NewWriter(f)
		if err := res.Recorder.WriteChromeTrace(bw); err != nil {
			log.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		// Status goes to stderr so stdout stays byte-comparable across runs.
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open in about://tracing or ui.perfetto.dev)\n", *traceOut)
	}
}
