package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pargraph/internal/cmdtest"
)

func TestSmokeAttrTable(t *testing.T) {
	cmdtest.Expect(t, []string{"-kernel", "fig1", "-machine", "both", "-n", "4096"},
		"MTA fig1", "SMP fig1", "per-region attribution", "issue", "compute")
}

func TestSmokeColoringKernel(t *testing.T) {
	cmdtest.Expect(t, []string{"-kernel", "coloring", "-machine", "both", "-n", "1024"},
		"MTA coloring", "SMP coloring", "per-region attribution")
}

func TestRejectsNegativeWorkers(t *testing.T) {
	cmdtest.RunError(t, []string{"-kernel", "fig1", "-workers", "-1"}, "workers must be >= 0")
}

func TestSmokeChromeTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	cmdtest.Run(t, "-kernel", "fig2", "-machine", "mta", "-n", "1024", "-attr", "none", "-trace", out)
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file holds no events")
	}
}
