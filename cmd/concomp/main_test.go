package main

import (
	"testing"

	"pargraph/internal/cmdtest"
)

func TestSmokeMTA(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "1024", "-m", "2048", "-machine", "mta"},
		"machine=mta", "components verified ok")
}

func TestSmokeSMP(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "1024", "-m", "2048", "-machine", "smp"},
		"machine=SMP", "components verified ok")
}

func TestRejectsBadFlags(t *testing.T) {
	cmdtest.RunError(t, []string{"-workers", "-1"}, "workers must be >= 0")
	cmdtest.RunError(t, []string{"-p", "0"}, "procs must be positive")
	cmdtest.RunError(t, []string{"-gen", "gnm", "-n", "0"})
	cmdtest.RunError(t, []string{"-gen", "unknown-gen"})
}
