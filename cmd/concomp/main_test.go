package main

import (
	"testing"

	"pargraph/internal/cmdtest"
)

func TestSmokeMTA(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "1024", "-m", "2048", "-machine", "mta"},
		"machine=mta", "components verified ok")
}

func TestSmokeSMP(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "1024", "-m", "2048", "-machine", "smp"},
		"machine=SMP", "components verified ok")
}
