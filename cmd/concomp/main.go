// Command concomp runs the paper's connected-components kernel
// (Shiloach–Vishkin) on a chosen machine and reports time, utilization,
// and the component count.
//
// Usage:
//
//	concomp -n 1048576 -m 4194304 -machine mta -p 8
//	concomp -gen mesh2d -rows 1024 -cols 1024 -machine smp -p 4
//	concomp -n 1048576 -m 8388608 -machine native -p 8
//	concomp -n 1048576 -m 8388608 -machine seq
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pargraph/internal/cmdutil"
	"pargraph/internal/concomp"
	"pargraph/internal/gio"
	"pargraph/internal/graph"
	"pargraph/internal/mta"
	"pargraph/internal/sim"
	"pargraph/internal/smp"
	"pargraph/internal/trace"
)

func buildGraph(gen string, n, m, rows, cols, depth int, seed uint64) (*graph.Graph, error) {
	if err := cmdutil.CheckGraphGen(gen, n, m, rows, cols, depth); err != nil {
		return nil, err
	}
	switch gen {
	case "gnm":
		return graph.RandomGnm(n, m, seed), nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		if scale < 1 {
			scale = 1
		}
		return graph.RMAT(scale, m, seed), nil
	case "mesh2d":
		return graph.Mesh2D(rows, cols), nil
	case "mesh3d":
		return graph.Mesh3D(rows, cols, depth), nil
	default: // torus; CheckGraphGen already rejected unknown names
		return graph.Torus2D(rows, cols), nil
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("concomp: ")
	var (
		gen      = flag.String("gen", "gnm", "graph generator: gnm, rmat, mesh2d, mesh3d, torus")
		n        = flag.Int("n", 1<<18, "vertices (gnm)")
		m        = flag.Int("m", 4<<18, "edges (gnm)")
		rows     = flag.Int("rows", 512, "rows (mesh/torus)")
		cols     = flag.Int("cols", 512, "cols (mesh/torus)")
		depth    = flag.Int("depth", 8, "depth (mesh3d)")
		machine  = flag.String("machine", "mta", "machine: mta, mta-star, smp, native, as, randmate, hybrid, seq, bfs")
		procs    = flag.Int("p", 8, "processors (goroutines for native)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		verify   = flag.Bool("verify", true, "cross-check against union-find")
		inFile   = flag.String("in", "", "read the graph from a DIMACS `p edge` file instead of generating")
		outFile  = flag.String("out", "", "also write the graph to a DIMACS `p edge` file")
		traceOut = flag.String("trace-json", "", "write a Chrome trace with per-region cycle attribution to this file (simulated machines)")
		workers  = flag.Int("workers", 1, "host goroutines replaying each simulated region (0 = auto: every core, serial for small regions); results are identical for any value")
		jobs     = flag.Int("jobs", 1, "accepted for sweep-tool parity (cmd/figures runs cells concurrently); this command runs a single cell")
	)
	flag.Parse()
	w, err := cmdutil.ResolveWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}
	*workers = w
	if _, err := cmdutil.ResolveJobs(*jobs); err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.CheckPositive("-p", *procs); err != nil {
		log.Fatal(err)
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = &trace.Recorder{}
	}
	writeTraceJSON := func() {
		if rec == nil {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	var g *graph.Graph
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		g, err = gio.ReadDIMACS(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g, err = buildGraph(*gen, *n, *m, *rows, *cols, *depth, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := gio.WriteDIMACS(f, g); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("graph: %s n=%d m=%d\n", *gen, g.N, g.M())

	var labels []int32
	switch *machine {
	case "mta", "mta-star":
		mm := mta.New(mta.DefaultConfig(*procs))
		mm.SetHostWorkers(*workers)
		if rec != nil {
			mm.SetSink(rec)
		}
		if *machine == "mta" {
			labels = concomp.LabelMTA(g, mm, sim.SchedDynamic)
		} else {
			labels = concomp.LabelMTAStarCheck(g, mm, sim.SchedDynamic)
		}
		st := mm.Stats()
		fmt.Printf("machine=%s p=%d\n", *machine, *procs)
		fmt.Printf("simulated: %.6f s (%.0f cycles)\n", mm.Seconds(), mm.Cycles())
		fmt.Printf("utilization: %.1f%%  refs=%d regions=%d barriers=%d\n",
			mm.Utilization()*100, st.Refs, st.Regions, st.Barriers)
		writeTraceJSON()
	case "smp":
		sm := smp.New(smp.DefaultConfig(*procs))
		sm.SetHostWorkers(*workers)
		if rec != nil {
			sm.SetSink(rec)
		}
		labels = concomp.LabelSMP(g, sm)
		st := sm.Stats()
		total := st.L1Hits + st.L2Hits + st.Misses
		fmt.Printf("machine=SMP p=%d\n", *procs)
		fmt.Printf("simulated: %.6f s (%.0f cycles)\n", sm.Seconds(), sm.Cycles())
		fmt.Printf("refs=%d  L1 %.1f%%  L2 %.1f%%  mem %.1f%%  barriers=%d\n",
			total,
			100*float64(st.L1Hits)/float64(total),
			100*float64(st.L2Hits)/float64(total),
			100*float64(st.Misses)/float64(total),
			st.Barriers)
		writeTraceJSON()
	case "native":
		start := time.Now()
		labels = concomp.SV(g, *procs)
		fmt.Printf("machine=native(goroutines,SV) p=%d wall=%.6f s\n", *procs, time.Since(start).Seconds())
	case "as":
		start := time.Now()
		labels = concomp.AwerbuchShiloach(g, *procs)
		fmt.Printf("machine=native(Awerbuch-Shiloach) p=%d wall=%.6f s\n", *procs, time.Since(start).Seconds())
	case "randmate":
		start := time.Now()
		labels = concomp.RandomMate(g, *seed)
		fmt.Printf("machine=random-mating wall=%.6f s\n", time.Since(start).Seconds())
	case "hybrid":
		start := time.Now()
		labels = concomp.Hybrid(g, *seed)
		fmt.Printf("machine=hybrid(random-mate+graft) wall=%.6f s\n", time.Since(start).Seconds())
	case "seq":
		start := time.Now()
		labels = concomp.UnionFind(g)
		fmt.Printf("machine=sequential(union-find) wall=%.6f s\n", time.Since(start).Seconds())
	case "bfs":
		start := time.Now()
		labels = concomp.BFS(g)
		fmt.Printf("machine=sequential(BFS) wall=%.6f s\n", time.Since(start).Seconds())
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	fmt.Printf("components: %d\n", graph.CountComponents(labels))
	if *verify {
		if !graph.SameComponents(labels, concomp.UnionFind(g)) {
			log.Print("VERIFICATION FAILED: partition disagrees with union-find")
			os.Exit(1)
		}
		fmt.Println("components verified ok")
	}
}
