// Command concomp runs the paper's connected-components kernel
// (Shiloach–Vishkin) on a chosen machine and reports time, utilization,
// and the component count.
//
// Usage:
//
//	concomp -n 1048576 -m 4194304 -machine mta -p 8
//	concomp -gen mesh2d -rows 1024 -cols 1024 -machine smp -p 4
//	concomp -n 1048576 -m 8388608 -machine native -p 8
//	concomp -n 1048576 -m 8388608 -machine seq
//	concomp -spec specs/concomp.toml -emit-manifest cc.manifest.json
package main

import (
	"flag"
	"log"

	"pargraph/internal/cmdutil"
	"pargraph/internal/runner"
	"pargraph/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("concomp: ")
	var (
		specPath = flag.String("spec", "", "load the experiment from this spec file (TOML); explicit flags override its fields")
		gen      = flag.String("gen", "gnm", "graph generator: gnm, rmat, mesh2d, mesh3d, torus")
		n        = flag.Int("n", 1<<18, "vertices (gnm)")
		m        = flag.Int("m", 4<<18, "edges (gnm)")
		rows     = flag.Int("rows", 512, "rows (mesh/torus)")
		cols     = flag.Int("cols", 512, "cols (mesh/torus)")
		depth    = flag.Int("depth", 8, "depth (mesh3d)")
		machine  = flag.String("machine", "mta", "machine: mta, mta-star, smp, native, as, randmate, hybrid, seq, bfs")
		procs    = flag.Int("p", 8, "processors (goroutines for native)")
		seed     = flag.Uint64("seed", 1, "workload seed")
		verify   = flag.Bool("verify", true, "cross-check against union-find")
		inFile   = flag.String("in", "", "read the graph from a DIMACS `p edge` file instead of generating")
		outFile  = flag.String("out", "", "also write the graph to a DIMACS `p edge` file")
		traceOut = flag.String("trace-json", "", "write a Chrome trace with per-region cycle attribution to this file (simulated machines)")
		workers  = flag.Int("workers", 1, "host goroutines replaying each simulated region (0 = auto: every core, serial for small regions); results are identical for any value")
		jobs     = flag.Int("jobs", 1, "accepted for sweep-tool parity (cmd/figures runs cells concurrently); this command runs a single cell")
		cacheDir = flag.String("cache-dir", "", "persist generated inputs and whole run results in a content-addressed cache at this directory (default $"+cmdutil.CacheEnv+"; empty = off)")
		noResult = flag.Bool("no-result-cache", false, "with a cache attached, keep the input cache but disable whole-result memoization")
		cacheSt  = flag.Bool("cache-stats", false, "print input- and result-cache hit/miss/byte counters to stderr after the run")
		cacheMax = flag.Int64("cache-max-bytes", 0, "bound the cache directory's size; least-recently-used entries are pruned on overflow (0 = unbounded)")
		manifest = flag.String("emit-manifest", "", "write a reproducibility manifest (spec hash, input keys, artifact hashes) to this file")
	)
	flag.Parse()

	sp, err := runner.LoadSpec(*specPath, spec.CmdConcomp)
	if err != nil {
		log.Fatal(err)
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "gen":
			sp.Workload.Gen = *gen
		case "n":
			sp.Workload.N = *n
		case "m":
			sp.Workload.M = *m
		case "rows":
			sp.Workload.Rows = *rows
		case "cols":
			sp.Workload.Cols = *cols
		case "depth":
			sp.Workload.Depth = *depth
		case "machine":
			sp.Workload.Machine = *machine
		case "p":
			sp.Workload.Procs = *procs
		case "seed":
			sp.Run.Seed = *seed
		case "verify":
			sp.Workload.Verify = *verify
		case "in":
			sp.Workload.Input = *inFile
		case "trace-json":
			sp.Output.Trace = *traceOut
		case "workers":
			sp.Run.Workers = *workers
		case "jobs":
			sp.Run.Jobs = *jobs
		case "cache-dir":
			sp.Run.CacheDir = *cacheDir
		case "emit-manifest":
			sp.Output.Manifest = *manifest
		}
	})
	if err := sp.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := runner.Run(sp, runner.Options{DumpGraph: *outFile, NoResultCache: *noResult, CacheStats: *cacheSt, CacheMaxBytes: *cacheMax}); err != nil {
		log.Fatal(err)
	}
}
