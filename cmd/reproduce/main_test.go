package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pargraph/internal/cmdtest"
	"pargraph/internal/runner"
	"pargraph/internal/spec"
)

// repoSpec is a small deterministic coloring run with two file
// artifacts and a recorded stdout hash — enough surface for both
// verification phases to have something to catch.
const repoSpec = "[run]\ncommand = \"coloring\"\nseed = 7\n" +
	"[workload]\ngen = \"gnm\"\nn = 256\nm = 1024\nmachine = \"mta\"\nprocs = 2\n" +
	"[output]\ntrace = \"c.trace.json\"\nattr = \"c.attr.csv\"\nmanifest = \"c.manifest.json\"\n"

// writeManifest runs repoSpec in dir (artifact paths are relative, so
// the run must happen from there) and returns the manifest's absolute
// path.
func writeManifest(t *testing.T, dir string) string {
	t.Helper()
	sp, err := spec.Parse([]byte(repoSpec))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	runErr := runner.Run(sp, runner.Options{Stdout: io.Discard, Stderr: io.Discard})
	if err := os.Chdir(cwd); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	return filepath.Join(dir, "c.manifest.json")
}

func TestRoundTrip(t *testing.T) {
	mani := writeManifest(t, t.TempDir())
	cmdtest.Expect(t, []string{mani},
		"2 on-disk artifact(s) match", "re-run reproduced 2 input(s) and 3 artifact(s) exactly")
}

func TestVerifyOnly(t *testing.T) {
	mani := writeManifest(t, t.TempDir())
	out := cmdtest.Expect(t, []string{"-verify-only", mani}, "2 on-disk artifact(s) match")
	if strings.Contains(out, "re-run") {
		t.Errorf("-verify-only still re-ran the spec:\n%s", out)
	}
}

func TestCorruptedArtifactFails(t *testing.T) {
	dir := t.TempDir()
	mani := writeManifest(t, dir)
	attr := filepath.Join(dir, "c.attr.csv")
	data, err := os.ReadFile(attr)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 1
	if err := os.WriteFile(attr, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cmdtest.RunError(t, []string{mani}, "c.attr.csv", "sha256")
}

func TestMissingArtifactFails(t *testing.T) {
	dir := t.TempDir()
	mani := writeManifest(t, dir)
	if err := os.Remove(filepath.Join(dir, "c.trace.json")); err != nil {
		t.Fatal(err)
	}
	cmdtest.RunError(t, []string{mani}, "artifact trace")
}

func TestTamperedSpecFails(t *testing.T) {
	dir := t.TempDir()
	mani := writeManifest(t, dir)
	data, err := os.ReadFile(mani)
	if err != nil {
		t.Fatal(err)
	}
	// Change the workload inside the embedded spec without updating the
	// recorded spec hash: the re-run must notice the drift.
	s := string(data)
	if !strings.Contains(s, "n = 256") {
		t.Fatalf("manifest does not embed the spec workload:\n%s", s)
	}
	s = strings.Replace(s, "n = 256", "n = 257", 1)
	if err := os.WriteFile(mani, []byte(s), 0o644); err != nil {
		t.Fatal(err)
	}
	cmdtest.RunError(t, []string{mani})
}

func TestRejectsUsageErrors(t *testing.T) {
	cmdtest.RunError(t, []string{}, "usage: reproduce")
	cmdtest.RunError(t, []string{filepath.Join(t.TempDir(), "nope.json")})
}
