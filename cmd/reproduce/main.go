// Command reproduce checks a reproducibility manifest written by the
// experiment commands' -emit-manifest (or cmd/shardmerge -manifest).
// It verifies in two phases:
//
//  1. The artifacts on disk still hash to what the manifest recorded
//     (artifact paths resolve relative to the manifest's directory;
//     artifacts that went to stdout exist only as hashes and are
//     checked in phase 2).
//  2. The manifest's embedded canonical spec is re-run in a scratch
//     directory and every recomputed input and artifact hash is
//     diffed against the record.
//
// Any mismatch is reported and the exit status is nonzero. A manifest
// whose spec reads input files by relative path must be re-run from
// the directory those paths resolve in; -verify-only skips phase 2.
//
// Usage:
//
//	reproduce fig1.manifest.json
//	reproduce -verify-only fig1.manifest.json
//	reproduce -cache-dir /tmp/pgc fig1.manifest.json   # warm re-run
//
// With -cache-dir (or $PARGRAPH_CACHE) the phase-2 re-run resolves
// inputs and whole sweep-cell results from the cache, which makes
// checking a large manifest fast; every recomputed hash is still
// diffed against the record, so a stale or corrupted cache entry
// surfaces as a reported mismatch, never as a silent pass.
// -no-result-cache keeps the input cache but forces every cell to
// re-simulate.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"pargraph/internal/harness"
	"pargraph/internal/manifest"
	"pargraph/internal/runner"
	"pargraph/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")
	verifyOnly := flag.Bool("verify-only", false, "only check the on-disk artifacts against the manifest; skip the re-run")
	cacheDir := flag.String("cache-dir", "", "let the phase-2 re-run consult a content-addressed input/result cache at this directory (default $PARGRAPH_CACHE; empty = off); hashes are diffed either way, so a poisoned cache fails the check rather than hiding drift")
	noResult := flag.Bool("no-result-cache", false, "with a cache attached, keep the input cache but force the re-run to re-simulate every cell")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: reproduce [-verify-only] <manifest.json>")
	}
	path := flag.Arg(0)
	m, err := manifest.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}

	failed := false
	fail := func(format string, args ...interface{}) {
		failed = true
		log.Printf(format, args...)
	}

	// Phase 1: the artifacts still on disk.
	base := filepath.Dir(path)
	checked := 0
	for _, a := range m.Artifacts {
		if a.Path == "" {
			continue // went to stdout; phase 2 recomputes its hash
		}
		p := a.Path
		if !filepath.IsAbs(p) {
			p = filepath.Join(base, p)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			fail("artifact %s: %v", a.Name, err)
			continue
		}
		if got := manifest.HashBytes(data); got != a.SHA256 {
			fail("artifact %s (%s): sha256 %s, manifest records %s", a.Name, p, got, a.SHA256)
			continue
		}
		checked++
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("%s: %d on-disk artifact(s) match\n", path, checked)
	if *verifyOnly {
		return
	}

	// Phase 2: re-run the embedded spec in a scratch directory and diff
	// everything the manifest recorded.
	if m.InputSchema != harness.InputSchema {
		log.Fatalf("manifest recorded inputs under schema %q; this build hashes them under %q, so input hashes are not comparable", m.InputSchema, harness.InputSchema)
	}
	sp, err := spec.Parse([]byte(m.Spec))
	if err != nil {
		log.Fatalf("embedded spec: %v", err)
	}
	if err := sp.Validate(); err != nil {
		log.Fatalf("embedded spec: %v", err)
	}
	tmp, err := os.MkdirTemp("", "reproduce-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)
	sp.Output.Manifest = filepath.Join(tmp, "rerun.manifest.json")
	// CacheDir is an execution field: the spec's canonical form excludes
	// it, so pointing the re-run at a cache cannot move the spec hash.
	sp.Run.CacheDir = *cacheDir

	cwd, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.Chdir(tmp); err != nil {
		log.Fatal(err)
	}
	runErr := runner.Run(sp, runner.Options{Stdout: io.Discard, Stderr: io.Discard, NoResultCache: *noResult})
	if err := os.Chdir(cwd); err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		log.Fatalf("re-run: %v", runErr)
	}
	m2, err := manifest.ReadFile(sp.Output.Manifest)
	if err != nil {
		log.Fatal(err)
	}

	if m2.SpecSHA256 != m.SpecSHA256 {
		fail("spec hash drifted: re-run %s, manifest records %s", m2.SpecSHA256, m.SpecSHA256)
	}
	if m.GoVersion != m2.GoVersion || m.Commit != m2.Commit {
		// Informational: a different toolchain or commit reproducing the
		// same hashes is the strongest outcome, not an error.
		fmt.Printf("note: recorded by %s commit %s, re-run by %s commit %s\n",
			m.GoVersion, m.Commit, m2.GoVersion, m2.Commit)
	}

	rerunInputs := make(map[string]manifest.Input, len(m2.Inputs))
	for _, in := range m2.Inputs {
		rerunInputs[in.Key] = in
	}
	for _, in := range m.Inputs {
		got, ok := rerunInputs[in.Key]
		switch {
		case !ok:
			fail("input %q: not resolved by the re-run", in.Key)
		case got.SHA256 != in.SHA256 || got.Bytes != in.Bytes:
			fail("input %q: re-run produced %s (%d bytes), manifest records %s (%d bytes)",
				in.Key, got.SHA256, got.Bytes, in.SHA256, in.Bytes)
		}
		delete(rerunInputs, in.Key)
	}
	for key := range rerunInputs {
		fail("input %q: resolved by the re-run but absent from the manifest", key)
	}

	if len(m2.Artifacts) != len(m.Artifacts) {
		fail("re-run produced %d artifact(s), manifest records %d", len(m2.Artifacts), len(m.Artifacts))
	} else {
		for i, a := range m.Artifacts {
			got := m2.Artifacts[i]
			if got.Name != a.Name || got.Path != a.Path {
				fail("artifact %d: re-run produced %s (%q), manifest records %s (%q)", i, got.Name, got.Path, a.Name, a.Path)
				continue
			}
			if got.SHA256 != a.SHA256 || got.Bytes != a.Bytes {
				fail("artifact %s (%q): re-run produced %s (%d bytes), manifest records %s (%d bytes)",
					a.Name, a.Path, got.SHA256, got.Bytes, a.SHA256, a.Bytes)
			}
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("%s: re-run reproduced %d input(s) and %d artifact(s) exactly\n", path, len(m.Inputs), len(m.Artifacts))
}
