// Command listrank runs the paper's list-ranking kernel on a chosen
// machine and reports time and (for the MTA) processor utilization.
//
// Usage:
//
//	listrank -n 1048576 -layout random -machine mta -p 8
//	listrank -n 1048576 -layout ordered -machine smp -p 4
//	listrank -n 1048576 -machine native -p 8     # real goroutines, wall clock
//	listrank -n 1048576 -machine seq             # sequential baseline
//	listrank -spec specs/listrank.toml -emit-manifest lr.manifest.json
package main

import (
	"flag"
	"log"

	"pargraph/internal/cmdutil"
	"pargraph/internal/listrank"
	"pargraph/internal/runner"
	"pargraph/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("listrank: ")
	var (
		specPath = flag.String("spec", "", "load the experiment from this spec file (TOML); explicit flags override its fields")
		n        = flag.Int("n", 1<<20, "list length")
		layout   = flag.String("layout", "random", "list layout: ordered, clustered, or random")
		machine  = flag.String("machine", "mta", "machine: mta, smp, native, or seq")
		procs    = flag.Int("p", 8, "processors (goroutines for native)")
		walks    = flag.Int("nodes-per-walk", listrank.DefaultNodesPerWalk, "MTA list nodes per walk")
		subl     = flag.Int("sublists-per-proc", 8, "SMP sublists per processor")
		sched    = flag.String("sched", "dynamic", "MTA loop schedule: dynamic or block")
		seed     = flag.Uint64("seed", 1, "workload seed")
		verify   = flag.Bool("verify", true, "cross-check ranks against the sequential walk")
		traceFl  = flag.Bool("trace", false, "print a per-region execution trace (simulated machines)")
		traceOut = flag.String("trace-json", "", "write a Chrome trace with per-region cycle attribution to this file (simulated machines)")
		workers  = flag.Int("workers", 1, "host goroutines replaying each simulated region (0 = auto: every core, serial for small regions); results are identical for any value")
		jobs     = flag.Int("jobs", 1, "accepted for sweep-tool parity (cmd/figures runs cells concurrently); this command runs a single cell")
		cacheDir = flag.String("cache-dir", "", "persist generated inputs and whole run results in a content-addressed cache at this directory (default $"+cmdutil.CacheEnv+"; empty = off)")
		noResult = flag.Bool("no-result-cache", false, "with a cache attached, keep the input cache but disable whole-result memoization")
		cacheSt  = flag.Bool("cache-stats", false, "print input- and result-cache hit/miss/byte counters to stderr after the run")
		cacheMax = flag.Int64("cache-max-bytes", 0, "bound the cache directory's size; least-recently-used entries are pruned on overflow (0 = unbounded)")
		manifest = flag.String("emit-manifest", "", "write a reproducibility manifest (spec hash, input keys, artifact hashes) to this file")
	)
	flag.Parse()

	sp, err := runner.LoadSpec(*specPath, spec.CmdListrank)
	if err != nil {
		log.Fatal(err)
	}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "n":
			sp.Workload.N = *n
		case "layout":
			sp.Workload.Layout = *layout
		case "machine":
			sp.Workload.Machine = *machine
		case "p":
			sp.Workload.Procs = *procs
		case "nodes-per-walk":
			// The spec clamps these to their defaults; an explicit flag
			// value stays strict so a typo'd 0 fails instead of silently
			// running the default.
			if err := cmdutil.CheckPositive("-nodes-per-walk", *walks); err != nil {
				log.Fatal(err)
			}
			sp.Workload.NodesPerWalk = *walks
		case "sublists-per-proc":
			if err := cmdutil.CheckPositive("-sublists-per-proc", *subl); err != nil {
				log.Fatal(err)
			}
			sp.Workload.Sublists = *subl
		case "sched":
			sp.Workload.Sched = *sched
		case "seed":
			sp.Run.Seed = *seed
		case "verify":
			sp.Workload.Verify = *verify
		case "trace-json":
			sp.Output.Trace = *traceOut
		case "workers":
			sp.Run.Workers = *workers
		case "jobs":
			sp.Run.Jobs = *jobs
		case "cache-dir":
			sp.Run.CacheDir = *cacheDir
		case "emit-manifest":
			sp.Output.Manifest = *manifest
		}
	})
	if err := sp.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := runner.Run(sp, runner.Options{RegionTrace: *traceFl, NoResultCache: *noResult, CacheStats: *cacheSt, CacheMaxBytes: *cacheMax}); err != nil {
		log.Fatal(err)
	}
}
