// Command listrank runs the paper's list-ranking kernel on a chosen
// machine and reports time and (for the MTA) processor utilization.
//
// Usage:
//
//	listrank -n 1048576 -layout random -machine mta -p 8
//	listrank -n 1048576 -layout ordered -machine smp -p 4
//	listrank -n 1048576 -machine native -p 8     # real goroutines, wall clock
//	listrank -n 1048576 -machine seq             # sequential baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"pargraph/internal/cmdutil"
	"pargraph/internal/list"
	"pargraph/internal/listrank"
	"pargraph/internal/mta"
	"pargraph/internal/sim"
	"pargraph/internal/smp"
	"pargraph/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("listrank: ")
	var (
		n        = flag.Int("n", 1<<20, "list length")
		layout   = flag.String("layout", "random", "list layout: ordered, clustered, or random")
		machine  = flag.String("machine", "mta", "machine: mta, smp, native, or seq")
		procs    = flag.Int("p", 8, "processors (goroutines for native)")
		walks    = flag.Int("nodes-per-walk", listrank.DefaultNodesPerWalk, "MTA list nodes per walk")
		subl     = flag.Int("sublists-per-proc", 8, "SMP sublists per processor")
		sched    = flag.String("sched", "dynamic", "MTA loop schedule: dynamic or block")
		seed     = flag.Uint64("seed", 1, "workload seed")
		verify   = flag.Bool("verify", true, "cross-check ranks against the sequential walk")
		traceFl  = flag.Bool("trace", false, "print a per-region execution trace (simulated machines)")
		traceOut = flag.String("trace-json", "", "write a Chrome trace with per-region cycle attribution to this file (simulated machines)")
		workers  = flag.Int("workers", 1, "host goroutines replaying each simulated region (0 = auto: every core, serial for small regions); results are identical for any value")
		jobs     = flag.Int("jobs", 1, "accepted for sweep-tool parity (cmd/figures runs cells concurrently); this command runs a single cell")
	)
	flag.Parse()
	w, err := cmdutil.ResolveWorkers(*workers)
	if err != nil {
		log.Fatal(err)
	}
	*workers = w
	if _, err := cmdutil.ResolveJobs(*jobs); err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.CheckPositive("-n", *n); err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.CheckPositive("-p", *procs); err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.CheckPositive("-nodes-per-walk", *walks); err != nil {
		log.Fatal(err)
	}
	if err := cmdutil.CheckPositive("-sublists-per-proc", *subl); err != nil {
		log.Fatal(err)
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = &trace.Recorder{}
	}
	writeTraceJSON := func() {
		if rec == nil {
			return
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	var lay list.Layout
	switch *layout {
	case "ordered":
		lay = list.Ordered
	case "random":
		lay = list.Random
	case "clustered":
		lay = list.Clustered
	default:
		log.Fatalf("unknown layout %q", *layout)
	}
	l := list.New(*n, lay, *seed)

	var rank []int64
	switch *machine {
	case "mta":
		s := sim.SchedDynamic
		if *sched == "block" {
			s = sim.SchedBlock
		} else if *sched != "dynamic" {
			log.Fatalf("unknown schedule %q", *sched)
		}
		m := mta.New(mta.DefaultConfig(*procs))
		m.SetHostWorkers(*workers)
		if *traceFl {
			m.EnableTrace()
		}
		if rec != nil {
			m.SetSink(rec)
		}
		rank = listrank.RankMTA(l, m, *n / *walks, s)
		st := m.Stats()
		fmt.Printf("machine=MTA p=%d n=%d layout=%s\n", *procs, *n, lay)
		fmt.Printf("simulated: %.6f s (%.0f cycles at %.0f MHz)\n", m.Seconds(), m.Cycles(), m.Config().ClockMHz)
		fmt.Printf("utilization: %.1f%%  refs=%d instrs=%d regions=%d barriers=%d\n",
			m.Utilization()*100, st.Refs, st.Instrs, st.Regions, st.Barriers)
		if *traceFl {
			m.WriteTrace(os.Stdout)
		}
		writeTraceJSON()
	case "smp":
		m := smp.New(smp.DefaultConfig(*procs))
		m.SetHostWorkers(*workers)
		if *traceFl {
			m.EnableTrace()
		}
		if rec != nil {
			m.SetSink(rec)
		}
		rank = listrank.RankSMP(l, m, *subl**procs, *seed^0xfeed)
		st := m.Stats()
		total := st.L1Hits + st.L2Hits + st.Misses
		fmt.Printf("machine=SMP p=%d n=%d layout=%s\n", *procs, *n, lay)
		fmt.Printf("simulated: %.6f s (%.0f cycles at %.0f MHz)\n", m.Seconds(), m.Cycles(), m.Config().ClockMHz)
		fmt.Printf("refs=%d  L1 %.1f%%  L2 %.1f%%  mem %.1f%%  barriers=%d\n",
			total,
			100*float64(st.L1Hits)/float64(total),
			100*float64(st.L2Hits)/float64(total),
			100*float64(st.Misses)/float64(total),
			st.Barriers)
		if *traceFl {
			m.WriteTrace(os.Stdout)
		}
		writeTraceJSON()
	case "native":
		start := time.Now()
		rank = listrank.HelmanJaja(l, *procs)
		fmt.Printf("machine=native(goroutines) p=%d n=%d layout=%s\n", *procs, *n, lay)
		fmt.Printf("wall clock: %.6f s\n", time.Since(start).Seconds())
	case "seq":
		start := time.Now()
		rank = listrank.Sequential(l)
		fmt.Printf("machine=sequential n=%d layout=%s\n", *n, lay)
		fmt.Printf("wall clock: %.6f s\n", time.Since(start).Seconds())
	default:
		log.Fatalf("unknown machine %q", *machine)
	}

	if *verify {
		if err := l.VerifyRanks(rank); err != nil {
			log.Printf("VERIFICATION FAILED: %v", err)
			os.Exit(1)
		}
		fmt.Println("ranks verified ok")
	}
}
