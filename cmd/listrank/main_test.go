package main

import (
	"testing"

	"pargraph/internal/cmdtest"
)

func TestSmokeMTA(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "4096", "-machine", "mta"},
		"machine=MTA", "ranks verified ok")
}

func TestSmokeSMP(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "4096", "-machine", "smp"},
		"machine=SMP", "ranks verified ok")
}

func TestRejectsBadFlags(t *testing.T) {
	cmdtest.RunError(t, []string{"-workers", "-1"}, "workers must be >= 0")
	cmdtest.RunError(t, []string{"-n", "0"}, "n must be positive")
	cmdtest.RunError(t, []string{"-p", "-2"}, "procs must be positive")
	cmdtest.RunError(t, []string{"-nodes-per-walk", "0"}, "-nodes-per-walk")
}
