package main

import (
	"testing"

	"pargraph/internal/cmdtest"
)

func TestSmokeMTA(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "4096", "-machine", "mta"},
		"machine=MTA", "ranks verified ok")
}

func TestSmokeSMP(t *testing.T) {
	cmdtest.Expect(t, []string{"-n", "4096", "-machine", "smp"},
		"machine=SMP", "ranks verified ok")
}
