// Package pargraph is a library-scale reproduction of
//
//	D. A. Bader, G. Cong, J. Feo.
//	"On the Architectural Requirements for Efficient Execution of Graph
//	Algorithms", ICPP 2005.
//
// The paper compares two irregular graph kernels — list ranking and
// Shiloach–Vishkin connected components — on two shared-memory
// architectures: a cache-based symmetric multiprocessor (a Sun E4500)
// and the cacheless, latency-tolerant Cray MTA-2. This module contains
//
//   - native, goroutine-parallel implementations of both kernels and
//     their sequential baselines (this package's exported API);
//   - simulators for both machine classes (internal/mta, internal/smp)
//     driven by faithful ports of the paper's algorithms, which
//     regenerate every figure and table in the paper's evaluation; and
//   - an experiment harness (cmd/figures) plus runnable examples.
//
// The exported API here is the stable surface: list and graph
// construction, the native algorithms, and one-call simulations of the
// paper's experiments. The internal packages are the machinery.
//
// # Quick start
//
//	l := pargraph.NewRandomList(1<<20, 42)
//	ranks := pargraph.RankList(l.Succ, l.Head, runtime.NumCPU())
//
//	g := pargraph.RandomGraph(1<<20, 8<<20, 7)
//	labels := pargraph.Components(g, runtime.NumCPU())
//
//	// The paper's experiment in one call: the same kernel on both
//	// simulated machines.
//	mta := pargraph.SimulateListRank(pargraph.MTA, 1<<20, pargraph.Random, 8, 1)
//	smp := pargraph.SimulateListRank(pargraph.SMP, 1<<20, pargraph.Random, 8, 1)
//	fmt.Printf("MTA %.3fs vs SMP %.3fs\n", mta.Seconds, smp.Seconds)
package pargraph
