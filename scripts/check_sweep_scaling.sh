#!/bin/sh
# CI guard for the sweep scheduler's scaling acceptance: on a host with
# at least 4 cores, the E1 (fig1) harness sweep at jobs=4 must run at
# least 1.8x faster than at jobs=1 (minimum ns/op over three runs of
# each). On hosts with fewer than 4 cores the scheduler caps jobs at
# GOMAXPROCS, the curve is structurally flat, and the guard skips rather
# than reporting a meaningless ratio.
#
# Usage: scripts/check_sweep_scaling.sh
set -eu

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -lt 4 ]; then
    echo "check_sweep_scaling: SKIP — host has $cores core(s); the jobs=4 vs jobs=1 ratio needs >= 4"
    exit 0
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkSweepScaling/fig1/jobs=(1|4)$' \
    -benchtime 1x -count 3 . | tee "$raw"

awk '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in nsop) || $3 + 0 < nsop[name] + 0) nsop[name] = $3
}
END {
    base = nsop["BenchmarkSweepScaling/fig1/jobs=1"]
    four = nsop["BenchmarkSweepScaling/fig1/jobs=4"]
    if (base + 0 <= 0 || four + 0 <= 0) {
        printf "check_sweep_scaling: missing measurements\n"
        exit 1
    }
    speedup = base / four
    printf "check_sweep_scaling: fig1 jobs=4 speedup over jobs=1 = %.2fx\n", speedup
    if (speedup < 1.8) {
        printf "check_sweep_scaling: FAIL — jobs=4 speedup %.2fx is below the 1.8x acceptance floor\n", speedup
        exit 1
    }
}' "$raw"
