#!/bin/sh
# CI guard for the sharding contract: the fig1 sweep run as a full shard
# set and merged by cmd/shardmerge must be byte-identical to the
# unsharded run — report JSON for shard counts 2 and 4, and the Chrome
# trace for count 2 (shards carry their events with -withtrace). Any
# drift between the sharded and unsharded paths — a cell skipped by the
# wrong shard, a merge reordering, a float re-rendered differently —
# shows up here as a diff, not as a quietly wrong figure.
#
# Usage: scripts/check_shard_equivalence.sh
set -eu

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/figures" ./cmd/figures
go build -o "$workdir/shardmerge" ./cmd/shardmerge

"$workdir/figures" -fig 1 -json -trace "$workdir/unsharded_trace.json" \
    >"$workdir/unsharded.json" 2>/dev/null

for n in 2 4; do
    cache="$workdir/cache$n"
    i=0
    while [ "$i" -lt "$n" ]; do
        "$workdir/figures" -fig 1 -json -shard "$i/$n" -cache-dir "$cache" -withtrace \
            >"$workdir/part$n.$i.json"
        i=$((i + 1))
    done
    "$workdir/shardmerge" -json "$workdir/merged$n.json" \
        -trace "$workdir/merged_trace$n.json" "$workdir"/part$n.*.json
    if ! cmp -s "$workdir/unsharded.json" "$workdir/merged$n.json"; then
        echo "check_shard_equivalence: FAIL — N=$n merged report differs from unsharded"
        diff "$workdir/unsharded.json" "$workdir/merged$n.json" | head -20
        exit 1
    fi
    if ! cmp -s "$workdir/unsharded_trace.json" "$workdir/merged_trace$n.json"; then
        echo "check_shard_equivalence: FAIL — N=$n merged trace differs from unsharded"
        exit 1
    fi
    echo "check_shard_equivalence: N=$n merged report and trace byte-identical to unsharded"
done
