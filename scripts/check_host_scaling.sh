#!/bin/sh
# CI guard against inverted host scaling: runs a short
# BenchmarkHostScaling smoke at workers=1 and workers=4 and fails if
# workers=4 is more than 25% slower than workers=1 on either simulator
# engine (minimum ns/op over three runs of each). This is a guard band,
# not a microbenchmark gate — shared CI machines show ±10% run-to-run
# noise even between identical binaries, so only the failure shape this
# guard exists for (adding workers makes replay structurally slower,
# which before the worker cap measured +26% and up) trips it.
#
# On hosts with fewer than 4 cores the workers=4 configuration cannot
# express its parallelism and the ratio measures scheduler thrash, not
# the regression this guard exists for — skip rather than flake.
#
# Usage: scripts/check_host_scaling.sh
set -eu

cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$cores" -lt 4 ]; then
    echo "check_host_scaling: SKIP — host has $cores core(s); the workers=4 vs workers=1 ratio needs >= 4"
    exit 0
fi

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkHostScaling/(MTA|SMP)/workers=(1|4)$' \
    -benchtime 2x -count 3 . | tee "$raw"

awk '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in nsop) || $3 + 0 < nsop[name] + 0) nsop[name] = $3
}
END {
    status = 0
    split("MTA SMP", engines, " ")
    for (i = 1; i <= 2; i++) {
        e = engines[i]
        base = nsop["BenchmarkHostScaling/" e "/workers=1"]
        four = nsop["BenchmarkHostScaling/" e "/workers=4"]
        if (base + 0 <= 0 || four + 0 <= 0) {
            printf "check_host_scaling: missing %s measurements\n", e
            status = 1
            continue
        }
        ratio = four / base
        printf "check_host_scaling: %s workers=4 / workers=1 = %.3f\n", e, ratio
        if (ratio > 1.25) {
            printf "check_host_scaling: FAIL — %s workers=4 is %.0f%% slower than workers=1 (allowed 25%%)\n", e, (ratio - 1) * 100
            status = 1
        }
    }
    exit status
}' "$raw"
