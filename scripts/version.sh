#!/bin/sh
# Prints the build's commit identity — short hash plus "-dirty" when the
# tree has uncommitted changes — for stamping into binaries via
#
#   go build -ldflags "-X pargraph/internal/cmdutil.Commit=$(sh scripts/version.sh)"
#
# This is the one place the repo shells out to git for provenance: the
# Makefile and the bench scripts stamp the value once per invocation and
# everything downstream (manifests, BENCH_*.json metas, cmd output)
# reads the stamped cmdutil.Version instead of re-asking git.
set -eu

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if [ "$commit" != unknown ] && ! git diff --quiet 2>/dev/null; then
    commit="$commit-dirty"
fi
printf '%s\n' "$commit"
