#!/bin/sh
# CI gate for the result cache: against a shared cache directory, a warm
# re-run of each sweep (fig1, fig2, table1, coloring) must emit
# byte-identical stdout to the cold run, the cold and warm manifests
# must agree on the spec hash, and the warm run's result store must
# report zero misses — no cell re-simulated. The warm fig1 sweep must
# also be at least 5x faster than the cold one (the measured margin is
# orders of magnitude; 5x just guards against the cache silently
# degrading to recompute-always).
#
# Usage: scripts/check_result_cache.sh
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

commit=$(sh "$root/scripts/version.sh")
bin="$work/bin"
mkdir -p "$bin"
(cd "$root" && go build -ldflags "-X pargraph/internal/cmdutil.Commit=$commit" -o "$bin" ./cmd/figures)

cache="$work/cache"
fail=0

now_ns() { date +%s%N; }

spec_hash() { sed -n 's/.*"spec_sha256": "\([0-9a-f]*\)".*/\1/p' "$1"; }

# check <name> <figures args...>: cold run primes the cache, warm run
# must replay it exactly.
check() {
    name=$1
    shift
    dir="$work/$name"
    mkdir -p "$dir"
    t0=$(now_ns)
    "$bin/figures" "$@" -cache-dir "$cache" -emit-manifest "$dir/cold.manifest.json" >"$dir/cold.out" 2>/dev/null
    t1=$(now_ns)
    "$bin/figures" "$@" -cache-dir "$cache" -cache-stats -emit-manifest "$dir/warm.manifest.json" >"$dir/warm.out" 2>"$dir/warm.stats"
    t2=$(now_ns)

    if ! cmp -s "$dir/cold.out" "$dir/warm.out"; then
        echo "FAIL: $name: warm stdout differs from cold"
        fail=1
        return
    fi
    if [ "$(spec_hash "$dir/cold.manifest.json")" != "$(spec_hash "$dir/warm.manifest.json")" ]; then
        echo "FAIL: $name: cold and warm manifests disagree on the spec hash"
        fail=1
        return
    fi
    stats=$(grep '^result cache' "$dir/warm.stats" || true)
    case $stats in
    *" misses=0 "*) ;;
    *)
        echo "FAIL: $name: warm run re-simulated cells: $stats"
        fail=1
        return
        ;;
    esac
    case $stats in
    *"hits=0 "*)
        echo "FAIL: $name: warm run recorded no result-cache hits: $stats"
        fail=1
        return
        ;;
    esac

    extra=""
    if [ "$name" = fig1 ]; then
        speedup=$(awk -v c=$((t1 - t0)) -v w=$((t2 - t1)) 'BEGIN { printf "%.1f", (w > 0) ? c / w : 999 }')
        if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 5) }'; then
            echo "FAIL: fig1: warm run only ${speedup}x faster than cold (need >= 5x)"
            fail=1
            return
        fi
        extra=" (warm ${speedup}x faster)"
    fi
    echo "ok: $name$extra"
}

check fig1     -fig 1 -json
check fig2     -fig 2 -json
check table1   -table 1 -json
check coloring -exp coloring -json

exit $fail
