#!/bin/sh
# Runs BenchmarkSweepScaling (the experiment scheduler's Jobs sweep over
# the E1 list-ranking and E8 coloring harness sweeps), BenchmarkWarmSweep
# (the E1 sweep cold vs warm against the result cache), and
# BenchmarkConcurrentJobs (four cold fig1 runs through runner.RunContext
# at job-level concurrency 1 vs 4 — the axis cmd/serve's -concurrency
# exposes) and writes BENCH_sweeps.json with a provenance meta block,
# ns/op per benchmark, each configuration's speedup over the same
# workload at jobs=1, and the concurrent-jobs speedup over conc=1.
# Each benchmark runs -count 3 and the minimum ns/op is kept — the
# standard noise-robust statistic on shared machines. Note the scheduler
# caps jobs at GOMAXPROCS, so on hosts with fewer cores than the swept
# jobs count the curve goes flat (speedup ~1.0) rather than inverting.
#
# Usage: scripts/bench_sweeps.sh [output.json]
set -eu

out=${1:-BENCH_sweeps.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# One git consultation per invocation, shared with the test binary via
# ldflags: the meta block and cmdutil.Version inside the benchmarked
# process report the same stamped value.
commit=$(sh "$(dirname "$0")/version.sh")
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gover=$(go version | awk '{print $3}')
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
# Stamp the effective GOMAXPROCS too: a run capped by the environment is
# not comparable to one given the whole machine, and the committed JSON
# should say which it was.
gomaxprocs=${GOMAXPROCS:-$cores}

go test -run '^$' -bench 'BenchmarkSweepScaling|BenchmarkWarmSweep|BenchmarkConcurrentJobs' \
    -ldflags "-X pargraph/internal/cmdutil.Commit=$commit" \
    -benchtime 1x -count 3 . | tee "$raw"

awk -v commit="$commit" -v stamp="$stamp" -v gover="$gover" -v cores="$cores" -v gomaxprocs="$gomaxprocs" '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in nsop)) {
        bench[n++] = name
        nsop[name] = $3
    } else if ($3 + 0 < nsop[name] + 0) {
        nsop[name] = $3
    }
}
END {
    printf "{\n"
    printf "  \"meta\": {\n"
    printf "    \"commit\": \"%s\",\n", commit
    printf "    \"date\": \"%s\",\n", stamp
    printf "    \"go\": \"%s\",\n", gover
    printf "    \"cores\": %d,\n", cores
    printf "    \"gomaxprocs\": %d\n", gomaxprocs
    printf "  },\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        b = bench[i]
        printf "    \"%s\": %s%s\n", b, nsop[b], (i < n - 1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedup_vs_jobs1\": {\n"
    nscale = 0
    for (i = 0; i < n; i++) {
        b = bench[i]
        if (b ~ /^BenchmarkSweepScaling\//) {
            wl = b
            sub(/^BenchmarkSweepScaling\//, "", wl)
            sub(/\/jobs=.*$/, "", wl)
            base = nsop["BenchmarkSweepScaling/" wl "/jobs=1"]
            if (base + 0 > 0) scale[nscale++] = b
        }
    }
    for (i = 0; i < nscale; i++) {
        b = scale[i]
        wl = b
        sub(/^BenchmarkSweepScaling\//, "", wl)
        sub(/\/jobs=.*$/, "", wl)
        base = nsop["BenchmarkSweepScaling/" wl "/jobs=1"]
        printf "    \"%s\": %.3f%s\n", b, base / nsop[b], (i < nscale - 1 ? "," : "")
    }
    printf "  },\n"
    printf "  \"speedup_vs_conc1\": {\n"
    nconc = 0
    for (i = 0; i < n; i++) {
        b = bench[i]
        if (b ~ /^BenchmarkConcurrentJobs\//) {
            wl = b
            sub(/^BenchmarkConcurrentJobs\//, "", wl)
            sub(/\/conc=.*$/, "", wl)
            base = nsop["BenchmarkConcurrentJobs/" wl "/conc=1"]
            if (base + 0 > 0) conc[nconc++] = b
        }
    }
    for (i = 0; i < nconc; i++) {
        b = conc[i]
        wl = b
        sub(/^BenchmarkConcurrentJobs\//, "", wl)
        sub(/\/conc=.*$/, "", wl)
        base = nsop["BenchmarkConcurrentJobs/" wl "/conc=1"]
        printf "    \"%s\": %.3f%s\n", b, base / nsop[b], (i < nconc - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' "$raw" >"$out"

echo "wrote $out"
