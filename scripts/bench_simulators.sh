#!/bin/sh
# Runs the simulator benchmarks (the host-scaling sweep plus the two
# single-worker engine benchmarks) and writes BENCH_simulators.json with
# ns/op per benchmark, so the simulators' host performance is tracked
# PR over PR.
#
# Usage: scripts/bench_simulators.sh [output.json]
set -eu

out=${1:-BENCH_simulators.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkHostScaling|BenchmarkSimulatorMTA$|BenchmarkSimulatorSMP$' \
    -benchtime 2x -count 1 . | tee "$raw"

awk '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    bench[n++] = name
    nsop[name] = $3
}
END {
    printf "{\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        b = bench[i]
        printf "    \"%s\": %s%s\n", b, nsop[b], (i < n - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' "$raw" >"$out"

echo "wrote $out"
