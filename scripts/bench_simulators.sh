#!/bin/sh
# Runs the simulator benchmarks (the host-scaling sweep plus the two
# single-worker engine benchmarks) and writes BENCH_simulators.json with
# a provenance meta block (commit, date, toolchain, core count), ns/op
# per benchmark and, for every host-scaling configuration, its
# speedup over the same engine at workers=1, so a scaling regression
# (speedup < 1) is visible in the committed JSON rather than needing a
# by-hand division. Each benchmark runs -count 2 and the minimum ns/op is
# kept — the standard noise-robust statistic on shared machines.
#
# Usage: scripts/bench_simulators.sh [output.json]
set -eu

out=${1:-BENCH_simulators.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# One git consultation per invocation, shared with the test binary via
# ldflags: the meta block and cmdutil.Version inside the benchmarked
# process report the same stamped value.
commit=$(sh "$(dirname "$0")/version.sh")
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
gover=$(go version | awk '{print $3}')
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
# Stamp the effective GOMAXPROCS too: a run capped by the environment is
# not comparable to one given the whole machine, and the committed JSON
# should say which it was.
gomaxprocs=${GOMAXPROCS:-$cores}

go test -run '^$' -bench 'BenchmarkHostScaling|BenchmarkSimulatorMTA$|BenchmarkSimulatorSMP$|BenchmarkSimulatorColoringMTA$|BenchmarkSimulatorColoringSMP$' \
    -ldflags "-X pargraph/internal/cmdutil.Commit=$commit" \
    -benchtime 2x -count 2 . | tee "$raw"

awk -v commit="$commit" -v stamp="$stamp" -v gover="$gover" -v cores="$cores" -v gomaxprocs="$gomaxprocs" '
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (!(name in nsop)) {
        bench[n++] = name
        nsop[name] = $3
    } else if ($3 + 0 < nsop[name] + 0) {
        nsop[name] = $3
    }
}
END {
    printf "{\n"
    printf "  \"meta\": {\n"
    printf "    \"commit\": \"%s\",\n", commit
    printf "    \"date\": \"%s\",\n", stamp
    printf "    \"go\": \"%s\",\n", gover
    printf "    \"cores\": %d,\n", cores
    printf "    \"gomaxprocs\": %d\n", gomaxprocs
    printf "  },\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        b = bench[i]
        printf "    \"%s\": %s%s\n", b, nsop[b], (i < n - 1 ? "," : "")
    }
    printf "  },\n"
    nscale = 0
    for (i = 0; i < n; i++) {
        b = bench[i]
        if (b ~ /^BenchmarkHostScaling\//) {
            engine = b
            sub(/^BenchmarkHostScaling\//, "", engine)
            sub(/\/workers=.*$/, "", engine)
            base = nsop["BenchmarkHostScaling/" engine "/workers=1"]
            if (base + 0 > 0) scale[nscale++] = b
        }
    }
    printf "  \"speedup_vs_workers1\": {\n"
    for (i = 0; i < nscale; i++) {
        b = scale[i]
        engine = b
        sub(/^BenchmarkHostScaling\//, "", engine)
        sub(/\/workers=.*$/, "", engine)
        base = nsop["BenchmarkHostScaling/" engine "/workers=1"]
        printf "    \"%s\": %.3f%s\n", b, base / nsop[b], (i < nscale - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' "$raw" >"$out"

echo "wrote $out"
