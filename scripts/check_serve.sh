#!/bin/sh
# CI gate for cmd/serve: start the server on a free port, submit the
# checked-in fig1 spec as a job, poll it to done, and require the HTTP
# report artifact to be byte-identical to what cmd/figures -spec writes
# for the same spec. A second submission of the same spec must replay
# entirely from the shared result store (zero computed cells), and a
# SIGTERM must drain the server to a clean exit 0.
#
# A second phase restarts the server with -concurrency 4 on a fresh
# cache directory and submits four distinct specs at once: every
# artifact must still match the CLI bytes, and /metrics must show the
# jobs actually overlapped (jobs_running_peak >= 2) and export latency
# quantiles.
#
# Usage: scripts/check_serve.sh
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
work=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

commit=$(sh "$root/scripts/version.sh")
bin="$work/bin"
mkdir -p "$bin"
(cd "$root" && go build -ldflags "-X pargraph/internal/cmdutil.Commit=$commit" -o "$bin" ./cmd/figures ./cmd/serve)

spec="$root/specs/e1_fig1.toml"
cache="$work/cache"
fail=0

# field <file> <key>: pull a scalar string/number field out of one of
# the server's JSON responses (they are indented one key per line).
field() { sed -n 's/^ *"'"$2"'": "\{0,1\}\([^",]*\)"\{0,1\},\{0,1\}$/\1/p' "$1" | head -n 1; }

# Reference bytes through the CLI path. The spec writes its report and
# manifest relative to the working directory.
mkdir -p "$work/cli"
(cd "$work/cli" && "$bin/figures" -spec "$spec" -cache-dir "$work/clicache" >/dev/null 2>&1)
[ -f "$work/cli/e1_fig1.json" ] || { echo "FAIL: CLI reference run wrote no report"; exit 1; }

"$bin/serve" -addr localhost:0 -cache-dir "$cache" 2>"$work/server.log" &
server_pid=$!

# The chosen port is announced on stderr.
port=""
for _ in $(seq 50); do
    port=$(sed -n 's#.*listening on http://[^:]*:\([0-9]*\)$#\1#p' "$work/server.log")
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "FAIL: server never announced its port"; cat "$work/server.log"; exit 1; }
base="http://localhost:$port"

# submit <specfile> <out>: POST the spec, print the job id.
submit() {
    curl -sS --fail-with-body --data-binary @"$1" "$base/jobs" >"$2" || {
        echo "FAIL: job submission rejected:"; cat "$2"; exit 1; }
    field "$2" id
}

# poll <id> <out>: wait for the job to leave pending/running.
poll() {
    for _ in $(seq 300); do
        curl -sS "$base/jobs/$1" >"$2"
        case $(field "$2" state) in
        done) return 0 ;;
        failed) echo "FAIL: job $1 failed: $(field "$2" error)"; return 1 ;;
        esac
        sleep 0.2
    done
    echo "FAIL: job $1 never finished"
    return 1
}

id=$(submit "$spec" "$work/submit1.json")
poll "$id" "$work/job1.json" || fail=1

if [ "$fail" = 0 ]; then
    curl -sS "$base/jobs/$id/artifacts/report" >"$work/http_report.json"
    if cmp -s "$work/http_report.json" "$work/cli/e1_fig1.json"; then
        echo "ok: HTTP report byte-identical to the CLI run"
    else
        echo "FAIL: HTTP report differs from CLI bytes"
        fail=1
    fi
    computed=$(sed -n '/"cells"/,/}/s/^ *"computed": \([0-9]*\).*/\1/p' "$work/job1.json")
    if [ -z "$computed" ] || [ "$computed" = 0 ]; then
        echo "FAIL: first job should have computed cells, got '${computed:-none}'"
        fail=1
    fi
fi

# Second submission: pure cache replay — zero re-simulated cells, same
# report bytes.
id2=$(submit "$spec" "$work/submit2.json")
poll "$id2" "$work/job2.json" || fail=1
if [ "$fail" = 0 ]; then
    computed2=$(sed -n '/"cells"/,/}/s/^ *"computed": \([0-9]*\).*/\1/p' "$work/job2.json")
    if [ "$computed2" = 0 ]; then
        echo "ok: repeated job replayed every cell from the cache"
    else
        echo "FAIL: repeated job re-simulated $computed2 cells, want 0"
        fail=1
    fi
    curl -sS "$base/jobs/$id2/artifacts/report" >"$work/http_report2.json"
    cmp -s "$work/http_report2.json" "$work/cli/e1_fig1.json" || {
        echo "FAIL: repeated job's report differs from CLI bytes"; fail=1; }
fi

# Metrics should reflect the two jobs.
curl -sS "$base/metrics" >"$work/metrics.txt"
grep -q '^jobs_done 2$' "$work/metrics.txt" || {
    echo "FAIL: metrics do not report 2 done jobs:"; cat "$work/metrics.txt"; fail=1; }

# Graceful shutdown: SIGTERM must drain to exit 0.
kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
if [ "$rc" = 0 ]; then
    echo "ok: SIGTERM drained the server to a clean exit"
else
    echo "FAIL: server exited $rc on SIGTERM"
    cat "$work/server.log"
    fail=1
fi

# --- Concurrent phase: 4 distinct specs against -concurrency 4 -------
# Each spec gets a CLI reference run first (shared CLI cache — only the
# bytes matter), then all four are submitted back to back against a
# fresh, cold server cache so the jobs genuinely overlap.
conc_specs="e1_fig1 e2_fig2 e5_saturation e6_streams"
for name in $conc_specs; do
    [ -f "$work/cli/$name.json" ] && continue
    (cd "$work/cli" && "$bin/figures" -spec "$root/specs/$name.toml" -cache-dir "$work/clicache" >/dev/null 2>&1)
    [ -f "$work/cli/$name.json" ] || { echo "FAIL: CLI reference run for $name wrote no report"; exit 1; }
done

"$bin/serve" -addr localhost:0 -cache-dir "$work/cache_conc" -concurrency 4 2>"$work/server_conc.log" &
server_pid=$!
port=""
for _ in $(seq 50); do
    port=$(sed -n 's#.*listening on http://[^:]*:\([0-9]*\)$#\1#p' "$work/server_conc.log")
    [ -n "$port" ] && break
    sleep 0.1
done
[ -n "$port" ] || { echo "FAIL: concurrent server never announced its port"; cat "$work/server_conc.log"; exit 1; }
base="http://localhost:$port"

ids=""
for name in $conc_specs; do
    ids="$ids $(submit "$root/specs/$name.toml" "$work/submit_$name.json")"
done

set -- $conc_specs
for id in $ids; do
    name=$1; shift
    poll "$id" "$work/job_$name.json" || fail=1
    if [ "$fail" = 0 ]; then
        curl -sS "$base/jobs/$id/artifacts/report" >"$work/http_$name.json"
        if cmp -s "$work/http_$name.json" "$work/cli/$name.json"; then
            echo "ok: concurrent $name report byte-identical to the CLI run"
        else
            echo "FAIL: concurrent $name report differs from CLI bytes"
            fail=1
        fi
    fi
done

curl -sS "$base/metrics" >"$work/metrics_conc.txt"
grep -q '^jobs_done 4$' "$work/metrics_conc.txt" || {
    echo "FAIL: concurrent metrics do not report 4 done jobs:"; cat "$work/metrics_conc.txt"; fail=1; }
peak=$(sed -n 's/^jobs_running_peak \([0-9]*\)$/\1/p' "$work/metrics_conc.txt")
if [ -n "$peak" ] && [ "$peak" -ge 2 ]; then
    echo "ok: jobs overlapped (jobs_running_peak=$peak)"
else
    echo "FAIL: jobs never overlapped (jobs_running_peak='${peak:-missing}')"
    fail=1
fi
for metric in 'job_seconds{quantile="0.95"}' 'cell_seconds{quantile="0.95"}'; do
    grep -qF "$metric" "$work/metrics_conc.txt" || {
        echo "FAIL: /metrics is missing $metric"; fail=1; }
done

kill -TERM "$server_pid"
rc=0
wait "$server_pid" || rc=$?
server_pid=""
if [ "$rc" = 0 ]; then
    echo "ok: concurrent server drained to a clean exit"
else
    echo "FAIL: concurrent server exited $rc on SIGTERM"
    cat "$work/server_conc.log"
    fail=1
fi

exit $fail
