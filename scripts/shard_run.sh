#!/bin/sh
# Coordinator for sharded figure runs: splits one cmd/figures invocation
# into N shard processes sharing a persistent content-addressed input
# cache, runs them concurrently, and merges their partial envelopes with
# cmd/shardmerge into the exact JSON the unsharded run would have
# written. The shards deduplicate generation through the shared cache:
# the first process to need an input builds and persists it, the rest
# read it back.
#
# Usage: scripts/shard_run.sh N OUT.json [figures args...]
#
#	scripts/shard_run.sh 4 report.json -fig 1 -scale medium
#	scripts/shard_run.sh 2 all.json -all
#
# The cache directory defaults to a per-invocation temporary; export
# PARGRAPH_CACHE to keep inputs warm across invocations.
set -eu

if [ $# -lt 2 ]; then
    echo "usage: scripts/shard_run.sh N OUT.json [figures args...]" >&2
    exit 2
fi
n=$1
out=$2
shift 2
if [ "$n" -lt 1 ] 2>/dev/null; then
    echo "shard_run: shard count must be a positive integer, got '$n'" >&2
    exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Build once; N concurrent `go run`s would race on the build cache lock
# and hide compile errors behind whichever shard fails first.
go build -o "$workdir/figures" ./cmd/figures
go build -o "$workdir/shardmerge" ./cmd/shardmerge

cache=${PARGRAPH_CACHE:-$workdir/cache}

i=0
pids=""
while [ "$i" -lt "$n" ]; do
    "$workdir/figures" "$@" -json -shard "$i/$n" -cache-dir "$cache" \
        >"$workdir/part$i.json" &
    pids="$pids $!"
    i=$((i + 1))
done

status=0
for pid in $pids; do
    wait "$pid" || status=$?
done
if [ "$status" -ne 0 ]; then
    echo "shard_run: a shard process failed (exit $status)" >&2
    exit "$status"
fi

"$workdir/shardmerge" -json "$out" "$workdir"/part*.json
echo "shard_run: merged $n shards into $out"
