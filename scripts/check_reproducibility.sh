#!/bin/sh
# CI gate for the spec/manifest layer: for every checked-in spec under
# specs/, the spec-driven run's report must be byte-identical to the
# equivalent flag-driven run's stdout, cmd/reproduce must accept the
# emitted manifest (which re-runs the spec and re-hashes every input
# and artifact), and after one byte of the report is corrupted
# cmd/reproduce must exit nonzero.
#
# Usage: scripts/check_reproducibility.sh
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

# One git consultation for the whole check; both binaries carry the same
# stamp, so manifest Commit fields agree between runs.
commit=$(sh "$root/scripts/version.sh")
bin="$work/bin"
mkdir -p "$bin"
(cd "$root" && go build -ldflags "-X pargraph/internal/cmdutil.Commit=$commit" -o "$bin" ./cmd/figures ./cmd/reproduce)

fail=0

# check <name> <flag args...>: spec-driven vs flag-driven byte identity,
# then the reproduce round trip on the spec run's manifest.
check() {
    name=$1
    shift
    dir="$work/$name"
    mkdir -p "$dir"
    (cd "$dir" && "$bin/figures" -spec "$root/specs/$name.toml" 2>/dev/null)
    "$bin/figures" "$@" >"$dir/flags.out" 2>/dev/null
    if ! cmp -s "$dir/$name.json" "$dir/flags.out"; then
        echo "FAIL: $name: spec-driven report differs from flag-driven run ($*)"
        fail=1
        return
    fi
    if ! "$bin/reproduce" "$dir/$name.manifest.json" >/dev/null; then
        echo "FAIL: $name: reproduce rejected a pristine manifest"
        fail=1
        return
    fi
    # Corrupt the first byte of the report ('{' becomes '#') and demand
    # a nonzero exit.
    printf '#' | dd of="$dir/$name.json" bs=1 count=1 conv=notrunc 2>/dev/null
    if "$bin/reproduce" "$dir/$name.manifest.json" >/dev/null 2>&1; then
        echo "FAIL: $name: reproduce exited 0 on a corrupted artifact"
        fail=1
        return
    fi
    echo "ok: $name"
}

check e1_fig1      -fig 1 -json
check e2_fig2      -fig 2 -json
check e3_table1    -table 1 -json
check e4_summary   -summary -json
check e5_saturation -exp saturation -json
check e6_streams   -exp streams -json
check e7_treeeval  -exp treeeval -json
check e8_coloring  -exp coloring -json

exit $fail
