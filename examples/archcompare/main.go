// Archcompare reruns the paper's core experiment in miniature: the same
// two kernels on both simulated machines, printing the comparison the
// paper's §5 makes — the MTA is insensitive to memory layout and beats
// the cache-based SMP by an order of magnitude on irregular access
// patterns, because its performance depends only on parallelism.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargraph"
)

func main() {
	const n = 1 << 18
	const procs = 8

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "experiment\tMTA\tSMP\tSMP/MTA")

	for _, layout := range []pargraph.Layout{pargraph.Ordered, pargraph.Random} {
		mta := pargraph.SimulateListRank(pargraph.MTA, n, layout, procs, 1)
		smp := pargraph.SimulateListRank(pargraph.SMP, n, layout, procs, 1)
		fmt.Fprintf(tw, "list ranking, %s list (n=%d)\t%.4fs\t%.4fs\t%.1fx\n",
			layout, n, mta.Seconds, smp.Seconds, smp.Seconds/mta.Seconds)
	}

	g := pargraph.RandomGraph(n/4, n, 3)
	mta := pargraph.SimulateComponents(pargraph.MTA, g, procs)
	smp := pargraph.SimulateComponents(pargraph.SMP, g, procs)
	fmt.Fprintf(tw, "connected components G(%d,%d)\t%.4fs\t%.4fs\t%.1fx\n",
		g.N, len(g.Edges), mta.Seconds, smp.Seconds, smp.Seconds/mta.Seconds)
	tw.Flush()

	fmt.Printf("\nMTA utilization on the random list: %.0f%% — performance is a function of parallelism.\n",
		pargraph.SimulateListRank(pargraph.MTA, n, pargraph.Random, procs, 1).Utilization*100)
}
