// Quickstart: the library's two kernels in a dozen lines — rank a linked
// list and label the components of a random graph, in parallel, and
// check both against their sequential baselines.
package main

import (
	"fmt"
	"log"
	"runtime"

	"pargraph"
)

func main() {
	procs := runtime.NumCPU()

	// List ranking: build a 1M-node list scattered randomly in memory
	// (the paper's hard case) and rank it with the parallel
	// Helman–JáJá algorithm.
	l := pargraph.NewRandomList(1<<20, 42)
	ranks := pargraph.RankList(l.Succ, l.Head, procs)
	if err := pargraph.VerifyRanks(l.Succ, l.Head, ranks); err != nil {
		log.Fatalf("ranking failed verification: %v", err)
	}
	fmt.Printf("ranked a %d-node random list; head rank=%d\n", len(ranks), ranks[l.Head])

	// Connected components: a sparse random graph, labeled with
	// parallel Shiloach–Vishkin and checked against union-find.
	g := pargraph.RandomGraph(1<<18, 1<<19, 7)
	labels := pargraph.Components(g, procs)
	if !pargraph.SameComponents(labels, pargraph.ComponentsSequential(g)) {
		log.Fatal("component labeling failed verification")
	}
	fmt.Printf("labeled G(%d, %d): %d components\n",
		g.N, len(g.Edges), pargraph.CountComponents(labels))
}
