// Exprtree evaluates arithmetic expression trees by parallel tree
// contraction — the application chain the paper's introduction builds on
// list ranking: Euler tour → list ranking → leaf numbering → rake. The
// example evaluates a large random expression and a pathologically
// unbalanced one (a linear chain of additions), where contraction's
// O(log n) rounds shine against the O(n)-depth naive recursion.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"pargraph"
)

func main() {
	procs := runtime.NumCPU()

	// A large random expression.
	const leaves = 1 << 18
	e := pargraph.RandomExpression(leaves, 2025)
	start := time.Now()
	seq := pargraph.EvalExpressionSequential(e)
	seqT := time.Since(start)
	start = time.Now()
	par := pargraph.EvalExpression(e, procs)
	parT := time.Since(start)
	if seq != par {
		log.Fatalf("evaluators disagree: %d vs %d", seq, par)
	}
	fmt.Printf("random expression, %d leaves: value %d (mod %d)\n", leaves, par, pargraph.ExprModulus)
	fmt.Printf("  sequential %.1f ms, contraction %.1f ms\n",
		seqT.Seconds()*1000, parT.Seconds()*1000)

	// A maximally unbalanced chain: (((1+1)+1)+...) with 100k terms.
	const depth = 100000
	chain := pargraph.Expression{
		Op:    make([]pargraph.ExprOp, 2*depth+1),
		Left:  make([]int32, 2*depth+1),
		Right: make([]int32, 2*depth+1),
		Val:   make([]int64, 2*depth+1),
	}
	for i := range chain.Left {
		chain.Left[i], chain.Right[i] = -1, -1
	}
	// Node 0 is the root; node i (internal) adds leaf 2i+2 to subtree i+1.
	for i := 0; i < depth; i++ {
		chain.Op[i] = pargraph.ExprAdd
		chain.Left[i] = int32(i + 1)
		chain.Right[i] = int32(depth + 1 + i)
		chain.Val[depth+1+i] = 1
	}
	chain.Val[depth] = 1 // the deepest leaf
	v := pargraph.EvalExpression(chain, procs)
	fmt.Printf("unbalanced +1 chain of depth %d: value %d (want %d)\n", depth, v, depth+1)
	if v != depth+1 {
		log.Fatal("chain evaluation wrong")
	}
}
