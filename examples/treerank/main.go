// Treerank demonstrates the application family the paper motivates list
// ranking with: tree computations via the Euler-tour technique. It
// builds a random tree, roots it in parallel (Euler tour + list
// ranking + list prefix sums), and reports depth and subtree statistics
// — the building blocks of expression evaluation, tree contraction and
// rooted-spanning-tree algorithms.
package main

import (
	"fmt"
	"log"
	"runtime"

	"pargraph"
	"pargraph/internal/rng"
)

func main() {
	const n = 1 << 18
	procs := runtime.NumCPU()

	// A random tree: vertex i hangs off a uniformly random earlier
	// vertex, giving expected depth O(log n).
	r := rng.New(2025)
	edges := make([]pargraph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, pargraph.Edge{U: int32(r.Intn(i)), V: int32(i)})
	}

	tree, err := pargraph.RootTree(n, edges, 0, procs)
	if err != nil {
		log.Fatal(err)
	}

	var maxDepth, sumDepth int64
	leaves := 0
	for v := 0; v < n; v++ {
		if tree.Depth[v] > maxDepth {
			maxDepth = tree.Depth[v]
		}
		sumDepth += tree.Depth[v]
		if tree.Size[v] == 1 {
			leaves++
		}
	}
	fmt.Printf("rooted a %d-vertex random tree at %d via Euler tour + list ranking\n", n, tree.Root)
	fmt.Printf("height: %d   mean depth: %.1f   leaves: %d\n", maxDepth, float64(sumDepth)/float64(n), leaves)
	fmt.Printf("root subtree size: %d (= n, sanity)\n", tree.Size[tree.Root])

	// Weighted prefix along a list: the general ⊕ form of §3. Sum the
	// first k odd numbers along an ordered list; prefix[k-1] = k².
	l := pargraph.NewOrderedList(10)
	vals := make([]int64, 10)
	for i := range vals {
		vals[i] = int64(2*i + 1)
	}
	pre := pargraph.PrefixList(l.Succ, l.Head, vals, procs)
	fmt.Printf("prefix sums of odd numbers along a list: %v (perfect squares)\n", pre)
}
