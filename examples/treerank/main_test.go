package main

import (
	"testing"

	"pargraph/internal/cmdtest"
)

func TestSmoke(t *testing.T) {
	cmdtest.Run(t)
}
