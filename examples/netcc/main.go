// Netcc labels the connected components of structured network
// topologies — the 2-D/3-D meshes on which the prior studies cited by
// the paper (Krishnamurthy et al., Goddard et al.) reported their
// results — and contrasts them with an equally sized sparse random
// graph, on both simulated machines. Regular topologies were the only
// graphs on which pre-2005 parallel codes saw speedup; the paper's point
// is that the MTA does not care about the difference.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"pargraph"
)

func main() {
	const procs = 8
	type workload struct {
		name string
		g    pargraph.Graph
	}
	side := 256
	workloads := []workload{
		{fmt.Sprintf("2-D mesh %dx%d", side, side), pargraph.MeshGraph(side, side)},
		{"3-D mesh 40x40x40", pargraph.Mesh3DGraph(40, 40, 40)},
		{fmt.Sprintf("torus %dx%d", side, side), pargraph.TorusGraph(side, side)},
		{"sparse random G(n, 2n)", pargraph.RandomGraph(side*side, 2*side*side, 11)},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "topology\tn\tm\tcomponents\tMTA\tSMP\tSMP/MTA")
	for _, w := range workloads {
		labels := pargraph.Components(w.g, procs)
		mta := pargraph.SimulateComponents(pargraph.MTA, w.g, procs)
		smp := pargraph.SimulateComponents(pargraph.SMP, w.g, procs)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.4fs\t%.4fs\t%.1fx\n",
			w.name, w.g.N, len(w.g.Edges), pargraph.CountComponents(labels),
			mta.Seconds, smp.Seconds, smp.Seconds/mta.Seconds)
	}
	tw.Flush()
}
